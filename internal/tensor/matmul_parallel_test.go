package tensor

import (
	"math/rand"
	"testing"
)

// forceParallel drops the serial-fallback threshold and pins the worker
// bound so even tiny products take the parallel path, restoring both on
// cleanup. Kernel globals are package-level, so these tests must not run
// in parallel with each other.
func forceParallel(t *testing.T, workers int) {
	t.Helper()
	prevFlops := gemmMinFlopsPerWorker
	prevWorkers := Parallelism()
	gemmMinFlopsPerWorker = 1
	SetParallelism(workers)
	t.Cleanup(func() {
		gemmMinFlopsPerWorker = prevFlops
		SetParallelism(prevWorkers)
	})
}

// serialOnly pins the kernels to one worker for the duration of fn.
func serialOnly(fn func()) {
	prev := Parallelism()
	SetParallelism(1)
	defer SetParallelism(prev)
	fn()
}

func randMat(rng *rand.Rand, rows, cols int) *Tensor {
	m := New(rows, cols)
	for i := range m.Data() {
		// Include exact zeros so the av==0 skip is exercised.
		if rng.Intn(5) == 0 {
			continue
		}
		m.Data()[i] = rng.NormFloat64()
	}
	return m
}

// gemmShapes are the property-test shapes: degenerate (m=1, k=1, n=1),
// odd, prime, and worker-count-adjacent sizes.
var gemmShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 5},
	{5, 1, 7},
	{7, 5, 1},
	{2, 3, 4},
	{3, 3, 3},
	{13, 17, 11},
	{31, 1, 31},
	{64, 63, 65},
	{127, 32, 9},
}

func tensorsEqualBitwise(t *testing.T, name string, got, want *Tensor) {
	t.Helper()
	if got.Size() != want.Size() {
		t.Fatalf("%s: size %d vs %d", name, got.Size(), want.Size())
	}
	for i := range want.Data() {
		if got.Data()[i] != want.Data()[i] {
			t.Fatalf("%s: element %d = %v, want %v (parallel path must be bit-identical)",
				name, i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestMatMulParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, workers := range []int{2, 3, 8} {
		forceParallel(t, workers)
		for _, s := range gemmShapes {
			a := randMat(rng, s.m, s.k)
			b := randMat(rng, s.k, s.n)
			var want *Tensor
			serialOnly(func() { want = MatMul(a, b) })
			tensorsEqualBitwise(t, "MatMul", MatMul(a, b), want)
		}
	}
}

func TestMatMulIntoParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	forceParallel(t, 4)
	for _, s := range gemmShapes {
		a := randMat(rng, s.m, s.k)
		b := randMat(rng, s.k, s.n)
		seed := randMat(rng, s.m, s.n)
		for _, accumulate := range []bool{false, true} {
			want := seed.Clone()
			serialOnly(func() { MatMulInto(want, a, b, accumulate) })
			got := seed.Clone()
			MatMulInto(got, a, b, accumulate)
			tensorsEqualBitwise(t, "MatMulInto", got, want)
		}
	}
}

func TestMatMulTAParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	forceParallel(t, 5)
	for _, s := range gemmShapes {
		a := randMat(rng, s.k, s.m)
		b := randMat(rng, s.k, s.n)
		var want *Tensor
		serialOnly(func() { want = MatMulTA(a, b) })
		tensorsEqualBitwise(t, "MatMulTA", MatMulTA(a, b), want)
	}
}

func TestMatMulTBParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	forceParallel(t, 5)
	for _, s := range gemmShapes {
		a := randMat(rng, s.m, s.k)
		b := randMat(rng, s.n, s.k)
		var want *Tensor
		serialOnly(func() { want = MatMulTB(a, b) })
		tensorsEqualBitwise(t, "MatMulTB", MatMulTB(a, b), want)
	}
}

func TestMatVecParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	forceParallel(t, 3)
	for _, s := range gemmShapes {
		a := randMat(rng, s.m, s.n)
		x := randMat(rng, 1, s.n).Reshape(s.n)
		var want *Tensor
		serialOnly(func() { want = MatVec(a, x) })
		tensorsEqualBitwise(t, "MatVec", MatVec(a, x), want)
	}
}

func TestKernelWorkersFallsBackToSerial(t *testing.T) {
	prev := Parallelism()
	SetParallelism(8)
	defer SetParallelism(prev)
	if w := kernelWorkers(4, 4*4*4); w != 1 {
		t.Fatalf("tiny product got %d workers, want serial fallback", w)
	}
	if w := kernelWorkers(2, 1<<30); w != 2 {
		t.Fatalf("2-row product got %d workers, want 2 (never more workers than rows)", w)
	}
}

func BenchmarkMatMulSerial(b *testing.B)   { benchMatMul(b, 1) }
func BenchmarkMatMulParallel(b *testing.B) { benchMatMul(b, 0) }

func benchMatMul(b *testing.B, workers int) {
	prev := Parallelism()
	if workers < 1 {
		SetParallelism(Parallelism())
	} else {
		SetParallelism(workers)
	}
	defer SetParallelism(prev)
	rng := rand.New(rand.NewSource(1))
	const m, k, n = 256, 256, 256
	x := randMat(rng, m, k)
	y := randMat(rng, k, n)
	c := New(m, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(c, x, y, false)
	}
	b.SetBytes(int64(8 * (m*k + k*n + m*n)))
}
