package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestReduceBitIdentity pins the contract the floatreduce sweep relies
// on: each kernel is bit-identical to the strict left-to-right ad-hoc
// loop it replaced. Float addition does not associate, so these would
// fail under any reordering or pairwise regrouping.
func TestReduceBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 17, 1000} {
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			// Wildly mixed magnitudes maximise rounding sensitivity.
			xs[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(12)-6))
			ys[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(12)-6))
		}

		var sum, sq, dot float64
		for i, v := range xs {
			sum += v
			sq += v * v
			dot += v * ys[i]
		}
		if got := Sum(xs); got != sum {
			t.Errorf("n=%d: Sum = %v, ad-hoc fold = %v", n, got, sum)
		}
		if got := SumSquares(xs); got != sq {
			t.Errorf("n=%d: SumSquares = %v, ad-hoc fold = %v", n, got, sq)
		}
		if got := Dot(xs, ys); got != dot {
			t.Errorf("n=%d: Dot = %v, ad-hoc fold = %v", n, got, dot)
		}
		if n > 0 {
			if got, want := Mean(xs), sum/float64(n); got != want {
				t.Errorf("n=%d: Mean = %v, want %v", n, got, want)
			}
		}
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean([]float64(nil)); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestSumStrided(t *testing.T) {
	// A 3-channel 2x2 CHW image; summing one pixel's channels walks
	// offset, offset+4, offset+8 — the render grayAt access pattern.
	img := []float64{
		1, 2, 3, 4, // channel 0
		10, 20, 30, 40, // channel 1
		100, 200, 300, 400, // channel 2
	}
	for px := 0; px < 4; px++ {
		var want float64
		for ch := 0; ch < 3; ch++ {
			want += img[ch*4+px]
		}
		if got := SumStrided(img, px, 4, 3); got != want {
			t.Errorf("pixel %d: SumStrided = %v, want %v", px, got, want)
		}
	}
	if got := SumStrided(img, 0, 4, 0); got != 0 {
		t.Errorf("n=0: SumStrided = %v, want 0", got)
	}
}

func TestReduceFloat32(t *testing.T) {
	xs := []float32{0.1, 0.2, 0.3, 0.4}
	var want float32
	for _, v := range xs {
		want += v
	}
	if got := Sum(xs); got != want {
		t.Errorf("Sum[float32] = %v, want %v", got, want)
	}
	if got := Dot(xs, xs); got != SumSquares(xs) {
		t.Errorf("Dot(x,x) = %v, SumSquares(x) = %v; want identical folds", got, SumSquares(xs))
	}
}
