package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling window
// applied to a [C,H,W] input.
type ConvGeom struct {
	C, H, W    int // input channels, height, width
	KH, KW     int // kernel size
	Stride     int
	Pad        int
	OutH, OutW int // derived output size
}

// Geom computes the output geometry for the given input and window
// parameters. It panics if the window never fits.
func Geom(c, h, w, kh, kw, stride, pad int) ConvGeom {
	if stride <= 0 {
		panic(fmt.Sprintf("tensor: stride %d must be positive", stride))
	}
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: conv window k=(%d,%d) stride=%d pad=%d does not fit input %dx%d", kh, kw, stride, pad, h, w))
	}
	return ConvGeom{C: c, H: h, W: w, KH: kh, KW: kw, Stride: stride, Pad: pad, OutH: oh, OutW: ow}
}

// Im2Col lowers a [C,H,W] input into a [C*KH*KW, OutH*OutW] matrix whose
// columns are the flattened receptive fields, so that convolution becomes
// a single MatMul with the [OC, C*KH*KW] weight matrix. Padding positions
// contribute zeros.
func Im2Col[E Num](x *Dense[E], g ConvGeom) *Dense[E] {
	if x.Rank() != 3 || x.Dim(0) != g.C || x.Dim(1) != g.H || x.Dim(2) != g.W {
		panic(fmt.Sprintf("tensor: Im2Col input %v does not match geometry %+v", x.Shape(), g))
	}
	rows := g.C * g.KH * g.KW
	cols := g.OutH * g.OutW
	out := NewOf[E](rows, cols)
	xd, od := x.Data(), out.Data()
	for c := 0; c < g.C; c++ {
		for ki := 0; ki < g.KH; ki++ {
			for kj := 0; kj < g.KW; kj++ {
				row := (c*g.KH+ki)*g.KW + kj
				base := row * cols
				for oi := 0; oi < g.OutH; oi++ {
					ii := oi*g.Stride + ki - g.Pad
					if ii < 0 || ii >= g.H {
						continue // stays zero
					}
					xrow := xd[(c*g.H+ii)*g.W:]
					orow := od[base+oi*g.OutW:]
					for oj := 0; oj < g.OutW; oj++ {
						jj := oj*g.Stride + kj - g.Pad
						if jj >= 0 && jj < g.W {
							orow[oj] = xrow[jj]
						}
					}
				}
			}
		}
	}
	return out
}

// Im2ColBatch lowers a [B,C,H,W] batch into a [C*KH*KW, B*OutH*OutW]
// matrix: sample b's receptive-field columns occupy the contiguous
// column block [b*OutH*OutW, (b+1)*OutH*OutW), each filled with exactly
// the values Im2Col produces for that sample. A convolution over the
// whole batch then becomes a single wide MatMul with the weight matrix,
// and every output column is produced by the same operation sequence as
// the per-sample product, so batched convolution is bit-identical to
// per-sample convolution.
func Im2ColBatch[E Num](x *Dense[E], g ConvGeom) *Dense[E] {
	if x.Rank() != 4 || x.Dim(1) != g.C || x.Dim(2) != g.H || x.Dim(3) != g.W {
		panic(fmt.Sprintf("tensor: Im2ColBatch input %v does not match geometry %+v", x.Shape(), g))
	}
	batch := x.Dim(0)
	rows := g.C * g.KH * g.KW
	sampleCols := g.OutH * g.OutW
	cols := batch * sampleCols
	out := NewOf[E](rows, cols)
	xd, od := x.Data(), out.Data()
	sampleSize := g.C * g.H * g.W
	for b := 0; b < batch; b++ {
		xs := xd[b*sampleSize : (b+1)*sampleSize]
		colBase := b * sampleCols
		for c := 0; c < g.C; c++ {
			for ki := 0; ki < g.KH; ki++ {
				for kj := 0; kj < g.KW; kj++ {
					row := (c*g.KH+ki)*g.KW + kj
					base := row*cols + colBase
					for oi := 0; oi < g.OutH; oi++ {
						ii := oi*g.Stride + ki - g.Pad
						if ii < 0 || ii >= g.H {
							continue // stays zero
						}
						xrow := xs[(c*g.H+ii)*g.W:]
						orow := od[base+oi*g.OutW:]
						for oj := 0; oj < g.OutW; oj++ {
							jj := oj*g.Stride + kj - g.Pad
							if jj >= 0 && jj < g.W {
								orow[oj] = xrow[jj]
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Col2Im scatters a [C*KH*KW, OutH*OutW] column matrix back into a
// [C,H,W] tensor, accumulating overlapping contributions. It is the
// adjoint of Im2Col and is used for the convolution input gradient.
func Col2Im[E Num](col *Dense[E], g ConvGeom) *Dense[E] {
	rows := g.C * g.KH * g.KW
	cols := g.OutH * g.OutW
	if col.Rank() != 2 || col.Dim(0) != rows || col.Dim(1) != cols {
		panic(fmt.Sprintf("tensor: Col2Im input %v does not match geometry %+v", col.Shape(), g))
	}
	x := NewOf[E](g.C, g.H, g.W)
	cd, xd := col.Data(), x.Data()
	for c := 0; c < g.C; c++ {
		for ki := 0; ki < g.KH; ki++ {
			for kj := 0; kj < g.KW; kj++ {
				row := (c*g.KH+ki)*g.KW + kj
				base := row * cols
				for oi := 0; oi < g.OutH; oi++ {
					ii := oi*g.Stride + ki - g.Pad
					if ii < 0 || ii >= g.H {
						continue
					}
					xrow := xd[(c*g.H+ii)*g.W:]
					crow := cd[base+oi*g.OutW:]
					for oj := 0; oj < g.OutW; oj++ {
						jj := oj*g.Stride + kj - g.Pad
						if jj >= 0 && jj < g.W {
							xrow[jj] += crow[oj]
						}
					}
				}
			}
		}
	}
	return x
}
