package tensor

import (
	"math/rand"
	"testing"
)

// Float32-vs-float64 GEMM: the pair CI's bench-regression job tracks
// for the reduced-precision kernel path. The shape is the wide batched
// convolution product of the serving hot loop ([OutC, C*K*K] ×
// [C*K*K, B*OHW]-ish), large enough to be memory-bandwidth-bound, where
// halving the element size is the point of the float32 path.
const (
	benchGemmM = 64
	benchGemmK = 256
	benchGemmN = 4096
)

func benchGemmOperands() (*Tensor, *Tensor) {
	rng := rand.New(rand.NewSource(42))
	a, b := New(benchGemmM, benchGemmK), New(benchGemmK, benchGemmN)
	a.FillNormal(rng, 0, 1)
	b.FillNormal(rng, 0, 1)
	return a, b
}

func BenchmarkGEMMF64(b *testing.B) {
	x, y := benchGemmOperands()
	c := New(benchGemmM, benchGemmN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(c, x, y, false)
	}
}

func BenchmarkGEMMF32(b *testing.B) {
	x64, y64 := benchGemmOperands()
	x, y := x64.F32(), y64.F32()
	c := New32(benchGemmM, benchGemmN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(c, x, y, false)
	}
}

// Out-of-cache GEMM: a square product whose B operand (512×2048 ≈ 1M
// elements, 8 MB in float64) falls well past L2, the shape the
// cache-blocked packed kernel exists for. Tracked by the CI
// bench-regression gate alongside the wide conv-shaped pair above.
const (
	benchGemmLargeM = 512
	benchGemmLargeK = 512
	benchGemmLargeN = 2048
)

func benchGemmLargeOperands() (*Tensor, *Tensor) {
	rng := rand.New(rand.NewSource(43))
	a, b := New(benchGemmLargeM, benchGemmLargeK), New(benchGemmLargeK, benchGemmLargeN)
	a.FillNormal(rng, 0, 1)
	b.FillNormal(rng, 0, 1)
	return a, b
}

func BenchmarkGEMMF64Large(b *testing.B) {
	x, y := benchGemmLargeOperands()
	c := New(benchGemmLargeM, benchGemmLargeN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(c, x, y, false)
	}
}

func BenchmarkGEMMF32Large(b *testing.B) {
	x64, y64 := benchGemmLargeOperands()
	x, y := x64.F32(), y64.F32()
	c := New32(benchGemmLargeM, benchGemmLargeN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(c, x, y, false)
	}
}
