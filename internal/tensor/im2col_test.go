package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeomOutputSizes(t *testing.T) {
	cases := []struct {
		h, w, k, s, p int
		wantH, wantW  int
	}{
		{28, 28, 3, 1, 0, 26, 26},
		{28, 28, 3, 1, 1, 28, 28},
		{32, 32, 2, 2, 0, 16, 16},
		{5, 7, 3, 2, 1, 3, 4},
	}
	for _, c := range cases {
		g := Geom(1, c.h, c.w, c.k, c.k, c.s, c.p)
		if g.OutH != c.wantH || g.OutW != c.wantW {
			t.Errorf("Geom(%dx%d k=%d s=%d p=%d) = %dx%d, want %dx%d",
				c.h, c.w, c.k, c.s, c.p, g.OutH, g.OutW, c.wantH, c.wantW)
		}
	}
}

func TestGeomBadStridePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero stride did not panic")
		}
	}()
	Geom(1, 4, 4, 2, 2, 0, 0)
}

func TestGeomWindowTooBigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized window did not panic")
		}
	}()
	Geom(1, 2, 2, 5, 5, 1, 0)
}

func TestIm2ColHandChecked(t *testing.T) {
	// 1 channel 3x3 input, 2x2 kernel, stride 1, no pad → 4 windows.
	x := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	g := Geom(1, 3, 3, 2, 2, 1, 0)
	col := Im2Col(x, g)
	if col.Dim(0) != 4 || col.Dim(1) != 4 {
		t.Fatalf("col shape %v, want [4 4]", col.Shape())
	}
	// Rows are kernel positions (k00,k01,k10,k11); columns are windows in
	// row-major output order: (0,0),(0,1),(1,0),(1,1).
	want := [][]float64{
		{1, 2, 4, 5}, // top-left of each window
		{2, 3, 5, 6},
		{4, 5, 7, 8},
		{5, 6, 8, 9},
	}
	for i := range want {
		for j := range want[i] {
			if got := col.At(i, j); got != want[i][j] {
				t.Fatalf("col[%d,%d] = %v, want %v", i, j, got, want[i][j])
			}
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	g := Geom(1, 2, 2, 3, 3, 1, 1)
	col := Im2Col(x, g)
	// Window centred at (0,0): kernel position (0,0) maps to x[-1,-1] = 0.
	if col.At(0, 0) != 0 {
		t.Fatal("padding position should be zero")
	}
	// kernel position (1,1) of window (0,0) maps to x[0,0] = 1.
	if col.At(4, 0) != 1 {
		t.Fatalf("centre of first window = %v, want 1", col.At(4, 0))
	}
}

func TestConvViaIm2ColMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const c, h, w, oc, k, stride, pad = 2, 6, 5, 3, 3, 1, 1
	x := New(c, h, w)
	x.FillNormal(rng, 0, 1)
	weight := New(oc, c*k*k)
	weight.FillNormal(rng, 0, 1)
	g := Geom(c, h, w, k, k, stride, pad)

	col := Im2Col(x, g)
	out := MatMul(weight, col) // [oc, OutH*OutW]

	// direct convolution
	for o := 0; o < oc; o++ {
		for oi := 0; oi < g.OutH; oi++ {
			for oj := 0; oj < g.OutW; oj++ {
				s := 0.0
				for cc := 0; cc < c; cc++ {
					for ki := 0; ki < k; ki++ {
						for kj := 0; kj < k; kj++ {
							ii, jj := oi*stride+ki-pad, oj*stride+kj-pad
							if ii < 0 || ii >= h || jj < 0 || jj >= w {
								continue
							}
							s += x.At(cc, ii, jj) * weight.At(o, (cc*k+ki)*k+kj)
						}
					}
				}
				if got := out.At(o, oi*g.OutW+oj); math.Abs(got-s) > 1e-12 {
					t.Fatalf("conv mismatch at (%d,%d,%d): im2col %v, direct %v", o, oi, oj, got, s)
				}
			}
		}
	}
}

func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> for all x, y — the defining property
	// of the adjoint, which is exactly what backprop requires.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 1 + rng.Intn(3)
		h := 3 + rng.Intn(5)
		w := 3 + rng.Intn(5)
		k := 1 + rng.Intn(3)
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(2)
		if h+2*pad < k || w+2*pad < k {
			return true
		}
		g := Geom(c, h, w, k, k, stride, pad)
		x := New(c, h, w)
		x.FillNormal(rng, 0, 1)
		y := New(c*k*k, g.OutH*g.OutW)
		y.FillNormal(rng, 0, 1)

		colX := Im2Col(x, g)
		imY := Col2Im(y, g)
		var left, right float64
		for i := range colX.Data() {
			left += colX.Data()[i] * y.Data()[i]
		}
		for i := range x.Data() {
			right += x.Data()[i] * imY.Data()[i]
		}
		return math.Abs(left-right) <= 1e-9*(1+math.Abs(left))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColShapeMismatchPanics(t *testing.T) {
	g := Geom(2, 4, 4, 2, 2, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Im2Col shape mismatch did not panic")
		}
	}()
	Im2Col(New(1, 4, 4), g)
}

func TestCol2ImShapeMismatchPanics(t *testing.T) {
	g := Geom(2, 4, 4, 2, 2, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Col2Im shape mismatch did not panic")
		}
	}()
	Col2Im(New(3, 3), g)
}

func BenchmarkIm2Col28x28(b *testing.B) {
	x := New(1, 28, 28)
	g := Geom(1, 28, 28, 3, 3, 1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(x, g)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a, c := New(64, 64), New(64, 64)
	a.FillNormal(rng, 0, 1)
	c.FillNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(a, c)
	}
}
