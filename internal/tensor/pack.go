package tensor

import (
	"math"
	"sync"
)

// Cache-blocking parameters for the packed GEMM kernels. Blocking is a
// pure traversal-order transform: every output element still receives
// its k terms one at a time in ascending k, with the same skip-on-zero
// test, into the same destination element — so results are bit-identical
// for ANY values of these knobs (the blocked_test property tests pin
// this across forced tiny blocks). They are vars, not consts, exactly so
// tests can force degenerate blocking; production values are sized for
// typical L1/L2 budgets of the pure-Go kernels.
var (
	// gemmBlockCols is the output-column tile width: one packed B panel
	// row and one C row tile (gemmBlockCols elements each) together fit
	// comfortably in L1.
	gemmBlockCols = 512
	// gemmBlockK is the k tile depth: a full packed panel of
	// gemmBlockK×gemmBlockCols B elements stays resident in L2 while the
	// row loop streams over it.
	gemmBlockK = 128
	// gemmBlockRows is the output-row tile height used by the transposed
	// kernels' C tiles.
	gemmBlockRows = 64
	// gemmPackMinElems gates blocking: only products whose streamed
	// operand exceeds this many elements (≈ falls out of L2) take the
	// blocked path; smaller products already run in cache and keep the
	// direct kernels' lower constant factor.
	gemmPackMinElems = 256 * 1024
)

// satMul returns a*b saturated at math.MaxInt for non-negative operands,
// so size and flop products over adversarially large dimensions can
// never overflow into a negative int.
func satMul(a, b int) int {
	if a <= 0 || b <= 0 {
		return 0
	}
	if a > math.MaxInt/b {
		return math.MaxInt
	}
	return a * b
}

// gemmFlops returns the m*k*n multiply-add count of a GEMM, saturated at
// math.MaxInt. Worker sizing must use this instead of a raw m*k*n
// product: the raw multiply can overflow on huge shape requests, and a
// negative flop count would silently clamp the kernel to one worker.
func gemmFlops(m, k, n int) int { return satMul(satMul(m, k), n) }

// Pack buffers are recycled through per-element-type pools so
// steady-state blocked GEMM performs no allocations: after warm-up every
// worker's packGet is a pool hit.
var (
	packPool64 sync.Pool // holds *[]float64
	packPool32 sync.Pool // holds *[]float32
)

// packGet returns a pack buffer of capacity at least n elements, reusing
// a pooled buffer when one is available.
func packGet[E Num](n int) *[]E {
	var zero E
	var v any
	switch any(zero).(type) {
	case float64:
		v = packPool64.Get()
	case float32:
		v = packPool32.Get()
	}
	if v != nil {
		if buf := v.(*[]E); cap(*buf) >= n {
			return buf
		}
	}
	buf := make([]E, n)
	return &buf
}

// packPut returns a buffer obtained from packGet to its pool.
func packPut[E Num](buf *[]E) {
	var zero E
	switch any(zero).(type) {
	case float64:
		packPool64.Put(any(buf).(*[]float64))
	case float32:
		packPool32.Put(any(buf).(*[]float32))
	}
}
