package tensor

import (
	"math"
	"math/rand"
)

// Random fills draw in float64 and convert to the element type, so the
// float64 instantiation consumes the identical rng stream and stores
// the identical values it always has.

// FillUniform fills t with samples from the uniform distribution on
// [lo, hi) drawn from rng.
func (t *Dense[E]) FillUniform(rng *rand.Rand, lo, hi float64) {
	for i := range t.data {
		t.data[i] = E(lo + rng.Float64()*(hi-lo))
	}
}

// FillNormal fills t with samples from N(mean, std²) drawn from rng.
func (t *Dense[E]) FillNormal(rng *rand.Rand, mean, std float64) {
	for i := range t.data {
		t.data[i] = E(mean + rng.NormFloat64()*std)
	}
}

// GlorotUniform fills t with the Glorot/Xavier uniform initialisation for
// a layer with the given fan-in and fan-out; the standard choice for
// Tanh/Sigmoid networks (Table I's MNIST model).
func (t *Dense[E]) GlorotUniform(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	t.FillUniform(rng, -limit, limit)
}

// HeNormal fills t with the He/Kaiming normal initialisation for a layer
// with the given fan-in; the standard choice for ReLU networks (Table I's
// CIFAR model).
func (t *Dense[E]) HeNormal(rng *rand.Rand, fanIn int) {
	t.FillNormal(rng, 0, math.Sqrt(2.0/float64(fanIn)))
}
