// Command paperbench regenerates every table and figure of the paper's
// evaluation section on the scaled testbeds and prints them as text.
//
// Usage:
//
//	paperbench [-fast] [-trials N] [-budget N] [-probes N]
//
// -fast switches to the reduced test-size configuration (seconds instead
// of minutes). The output order follows the paper: Table I, Fig. 2,
// Fig. 3, Fig. 4, Table II, Table III, then the ablations A1–A4.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/attack"
	"repro/internal/experiments"
	"repro/internal/validate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")

	fast := flag.Bool("fast", false, "use the reduced test-size configuration")
	trials := flag.Int("trials", 200, "perturbation trials per detection cell")
	budget := flag.Int("budget", 60, "test budget for the Fig. 3 curves")
	probes := flag.Int("probes", 100, "probe images per Fig. 2 set")
	par := flag.Int("parallel", 0, "worker goroutines for training and generation (0 = serial training + whole-machine generation; generated suites are bit-identical at any value)")
	batch := flag.Int("batch", 0, "evaluation batch size per worker for suite generation (0 = default batch, 1 = per-sample; suites are bit-identical at any value)")
	tol := flag.Float64("tol", 1e-4, "replay tolerance for the float32 precision report")
	flag.Parse()

	start := time.Now()
	mp, cp := experiments.DefaultMNISTParams(), experiments.DefaultCIFARParams()
	if *fast {
		mp, cp = experiments.FastMNISTParams(), experiments.FastCIFARParams()
		if *probes > 30 {
			*probes = 30
		}
		if *trials > 60 {
			*trials = 60
		}
		if *budget > 25 {
			*budget = 25
		}
	}
	mp.Parallelism, cp.Parallelism = *par, *par
	mp.Batch, cp.Batch = *batch, *batch

	fmt.Println("== Reproduction of: On Functional Test Generation for DNN IPs (DATE 2019) ==")
	fmt.Printf("configuration: fast=%v trials=%d budget=%d probes=%d\n\n", *fast, *trials, *budget, *probes)

	mnist, err := experiments.NewMNISTSetup(mp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[%6.1fs] trained %s (accuracy %.1f%%, %d params)\n",
		time.Since(start).Seconds(), mnist.Name, 100*mnist.Accuracy, mnist.Net.NumParams())
	cifar, err := experiments.NewCIFARSetup(cp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[%6.1fs] trained %s (accuracy %.1f%%, %d params)\n\n",
		time.Since(start).Seconds(), cifar.Name, 100*cifar.Accuracy, cifar.Net.NumParams())

	fmt.Println(experiments.RunTable1(mnist, cifar).Render())

	// Precision column: where the float32 serving path stands relative
	// to the float64 reference the suites are recorded at.
	prec, err := experiments.RunPrecision([]*experiments.Setup{mnist, cifar}, *probes, *tol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(prec.Render())

	// Wire bandwidth columns: the measured bytes/query of replaying the
	// same QuantizedOutputs suite over each protocol dialect (v2 gob,
	// v3 float32, v4 quantised delta-encoded), steady state on loopback.
	wire, err := experiments.RunWire([]*experiments.Setup{mnist, cifar}, *probes, *tol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(wire.Render())

	for _, s := range []*experiments.Setup{mnist, cifar} {
		f := experiments.RunFig2(s, *probes)
		fmt.Println(f.Render())
		fmt.Printf("  paper ordering (training > natural > noise): %v; noise lowest: %v\n\n", f.Ordered(), f.NoiseLowest())
	}

	fig3, err := experiments.RunFig3(cifar, *budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig3.Render())

	fig4 := experiments.RunFig4(mnist, 40)
	fmt.Println(fig4.Render(4))

	det := experiments.DefaultDetectionParams()
	det.Trials = *trials
	det.Batch = *batch
	// The Tanh model needs quantised comparison: with saturating
	// activations every parameter moves the float64 output, so the
	// paper's exact check detects everything trivially. Quantised
	// outputs model a fixed-point hardware IP.
	detMNIST := det
	detMNIST.Mode = validate.QuantizedOutputs
	detMNIST.Decimals = 1
	// The small Tanh model propagates faults densely (no hard gating),
	// so the perturbations are scaled down to keep Table II informative.
	detMNIST.SBAMagnitude = 0.8
	detMNIST.RandomSigma = 0.15
	detMNIST.GDA = attack.GDAConfig{Steps: 8, LR: 0.02, TopK: 10}
	t2, err := experiments.RunDetection(mnist, detMNIST)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Table II — %s\n%s  proposed ≥ baseline in every cell: %v\n\n", "MNIST substitute", t2.Render(), t2.ProposedWins())

	t3, err := experiments.RunDetection(cifar, det)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Table III — %s\n%s  proposed ≥ baseline in every cell: %v\n\n", "CIFAR substitute", t3.Render(), t3.ProposedWins())

	a1, err := experiments.RunAblationSwitch(cifar, *budget/2, []int{5, 15})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a1.Render())

	a2, err := experiments.RunAblationInit(cifar, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a2.Render())

	a3 := experiments.RunAblationEpsilon(mnist, []float64{1e-8, 1e-4, 1e-2, 5e-2, 1e-1}, 20)
	fmt.Println(a3.Render())

	a4, err := experiments.RunAblationCompare(cifar, 20, *trials)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a4.Render())

	fmt.Printf("total runtime: %.1fs\n", time.Since(start).Seconds())
	os.Exit(0)
}
