// Command dnnval drives the vendor/user validation workflow of Fig. 1
// from the command line.
//
// Subcommands:
//
//	train    - build and train a model, write it to a .gob file
//	generate - generate a functional test suite for a model, seal it
//	attack   - apply a parameter attack to a stored model, or sweep a
//	           detection-rate campaign over the attack zoo
//	           (-magnitude-grid; kinds × modes × magnitudes over seeded
//	           trials, bit-reproducible at any worker count, with JSON
//	           output and a regression gate against stored floors)
//	validate - replay a sealed suite against a model file or served IP
//	           (batched queries, concurrent workers, sharded replicas,
//	           -wire gob|f32|quant selecting the v2/v3/v4+v5 dialect)
//	serve    - host a model as a black-box IP over TCP, optionally as a
//	           fleet of replicas with concurrent per-replica workers
//	           (speaks wire protocols v2-v5; -max-wire pins the ceiling,
//	           -coalesce batches single queries across connections, and
//	           all replicas share one content-addressed frame store)
//	sentinel - continuous fleet validation: trickle-replay random suite
//	           subsets against a live fleet on a schedule under a query
//	           budget, attribute divergence to replicas, quarantine and
//	           readmit them, expose /metrics + /status over HTTP, and
//	           POST alerts to a webhook (-alert-url)
//	info     - print a model summary and per-layer parameter counts
//
// Run `dnnval <subcommand> -h` for flags. Datasets are procedural and
// regenerated from seeds, so no data files are needed.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/quant"
	"repro/internal/sentinel"
	"repro/internal/tensor"
	"repro/internal/train"
	"repro/internal/validate"
)

// parseCompareMode maps the -mode flag to a suite comparison mode.
func parseCompareMode(mode string) (validate.CompareMode, error) {
	switch mode {
	case "exact":
		return validate.ExactOutputs, nil
	case "quantized":
		return validate.QuantizedOutputs, nil
	case "labels":
		return validate.LabelsOnly, nil
	default:
		return 0, fmt.Errorf("unknown -mode %q (want exact, quantized or labels)", mode)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dnnval: ")
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:])
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "attack":
		err = cmdAttack(os.Args[2:])
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "sentinel":
		err = cmdSentinel(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dnnval {train|generate|attack|validate|serve|sentinel|info} [flags]")
	os.Exit(2)
}

func loadModel(path string) (*nn.Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return nn.Decode(f)
}

func saveModel(path string, network *nn.Network) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return network.Encode(f)
}

// dataset builds the named procedural dataset sized for the model kind.
func dataset(kind string, n, h, w int, seed int64) (*data.Dataset, error) {
	switch kind {
	case "digits":
		return data.Digits(n, h, w, seed), nil
	case "objects":
		return data.Objects(n, h, w, seed), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (want digits or objects)", kind)
	}
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	arch := fs.String("arch", "cifar", "architecture: mnist (Tanh) or cifar (ReLU)")
	size := fs.Int("size", 20, "input height/width")
	scale := fs.Float64("scale", 0.25, "width scale of the Table I stacks")
	n := fs.Int("n", 800, "training samples")
	epochs := fs.Int("epochs", 8, "training epochs")
	lr := fs.Float64("lr", 0.002, "Adam learning rate")
	seed := fs.Int64("seed", 1, "random seed")
	par := fs.Int("parallel", 1, "training worker goroutines; the default 1 keeps the model a machine-independent function of -seed, >1 is deterministic per (seed, parallel) but depends on the chosen worker count")
	out := fs.String("o", "model.gob", "output model file")
	fs.Parse(args)

	var a models.Arch
	var ds *data.Dataset
	switch *arch {
	case "mnist":
		a = models.MNIST(*size, *size, *scale)
		ds = data.Digits(*n, *size, *size, *seed+100)
	case "cifar":
		a = models.CIFAR(*size, *size, *scale)
		ds = data.Objects(*n, *size, *size, *seed+100)
	default:
		return fmt.Errorf("unknown arch %q", *arch)
	}
	network, err := a.Build(*seed)
	if err != nil {
		return err
	}
	res, err := train.Fit(network, ds, train.Config{
		Epochs:      *epochs,
		BatchSize:   16,
		Optimizer:   train.NewAdam(*lr),
		Seed:        *seed,
		Logf:        log.Printf,
		Parallelism: *par,
	})
	if err != nil {
		return err
	}
	log.Printf("trained %s: accuracy %.1f%%, %d parameters", a.Name, 100*res.TrainAccuracy, network.NumParams())
	return saveModel(*out, network)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	model := fs.String("model", "model.gob", "model file")
	dsKind := fs.String("data", "objects", "training data: digits or objects")
	size := fs.Int("size", 20, "input height/width")
	n := fs.Int("n", 30, "number of functional tests (Nt)")
	pool := fs.Int("pool", 300, "training pool size for Algorithm 1")
	seed := fs.Int64("seed", 1, "random seed")
	method := fs.String("method", "combined", "generator: combined, select, gradient")
	par := fs.Int("parallel", parallel.Auto(), "worker goroutines (suite is bit-identical at any value)")
	batch := fs.Int("batch", 0, "evaluation batch size per worker: 0 = default, 1 = per-sample (suite is bit-identical at any value)")
	mode := fs.String("mode", "exact", "comparison mode sealed into the suite: exact (bit-identical outputs, the paper's setting), quantized (outputs rounded to -decimals; enables the v4 quantised wire replay), labels (argmax only)")
	decimals := fs.Int("decimals", 6, "decimal precision of -mode quantized")
	key := fs.String("key", "", "seal the suite with this key (hex-free shared secret)")
	out := fs.String("o", "suite.bin", "output suite file")
	fs.Parse(args)

	cmpMode, err := parseCompareMode(*mode)
	if err != nil {
		return err
	}
	if *decimals < 0 || *decimals > quant.MaxDecimals {
		return fmt.Errorf("-decimals %d out of range [0,%d]", *decimals, quant.MaxDecimals)
	}

	network, err := loadModel(*model)
	if err != nil {
		return err
	}
	ds, err := dataset(*dsKind, *pool, *size, *size, *seed+100)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions(*n)
	opts.Coverage = coverage.DefaultConfig(network)
	opts.Seed = *seed
	opts.Parallelism = *par
	opts.Batch = *batch
	// Run the generator fan-outs on one persistent worker pool with
	// pinned clones; the suite is bit-identical to the pool-less path at
	// the same worker count.
	workerPool := parallel.NewPool(*par)
	defer workerPool.Close()
	opts.Pool = workerPool

	var res *core.Result
	switch *method {
	case "combined":
		res, err = core.Combined(network, ds, opts)
	case "select":
		res, err = core.SelectFromTraining(network, ds, opts)
	case "gradient":
		res, err = core.GradientGenerate(network, []int{ds.C, ds.H, ds.W}, ds.Classes, opts)
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	if err != nil {
		return err
	}
	log.Printf("%d tests, validation coverage %.1f%% (switch point %d)",
		len(res.Tests), 100*res.FinalCoverage(), res.SwitchPoint)

	suite := validate.BuildSuite("dnnval", network, res.Tests, cmpMode)
	suite.Decimals = *decimals
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if *key == "" {
		return fmt.Errorf("a -key is required to seal the suite")
	}
	return suite.Seal(f, []byte(*key))
}

func cmdAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	model := fs.String("model", "model.gob", "model file")
	kind := fs.String("kind", "sba", "attack kind: sba, gda, random, bitflip, tbitflip, trojan, subround; with -magnitude-grid, a comma list (or \"all\") of campaign kinds including adaptive")
	magnitude := fs.Float64("magnitude", 5, "attack magnitude: sba bias offset, trojan margin scale, subround headroom as a fraction of the acceptance slack")
	count := fs.Int("count", 1, "parameters for random/bitflip/tbitflip")
	sigma := fs.Float64("sigma", 0.5, "random perturbation std")
	bit := fs.Int("bit", 31, "stored float32 bit tbitflip targets: 31 sign, 30-23 exponent, 22-0 mantissa")
	dsKind := fs.String("data", "objects", "victim/probe data: digits or objects")
	size := fs.Int("size", 20, "input height/width")
	seed := fs.Int64("seed", 1, "random seed; a campaign is bit-reproducible from (-seed, grid) alone at any -workers")
	out := fs.String("o", "", "output model file (default: overwrite input; unused in campaign mode)")
	decimals := fs.Int("decimals", 3, "rounding boundary the subround attacker hides under, and the campaign's quantized-mode precision")
	tol := fs.Float64("tol", 0, "replay tolerance the subround/adaptive attackers target instead of the rounding boundary (0 = bit-exact)")

	// Campaign mode: sweep detection rate vs magnitude instead of
	// applying one edit.
	grid := fs.String("magnitude-grid", "", "comma-separated magnitudes; selects campaign mode (detection-rate sweep, model left untouched)")
	modes := fs.String("mode", "exact,quantized,labels", "comma-separated suite comparison modes the campaign sweeps")
	trials := fs.Int("trials", 20, "seeded trials per campaign cell")
	workers := fs.Int("workers", 0, "campaign worker goroutines (0 = whole machine; tables are identical at any value)")
	pool := fs.Int("pool", 80, "victim pool size for campaign gda/trojan/adaptive trials")
	suiteN := fs.Int("suite-n", 12, "tests in the campaign's in-process suite (ignored with -suite)")
	suitePath := fs.String("suite", "", "sealed suite the campaign replays instead of building one in-process (requires -key)")
	key := fs.String("key", "", "sealing key of -suite")
	jsonOut := fs.String("json", "", "write the campaign result as JSON to this file")
	gatePath := fs.String("gate", "", "check campaign detection rates against the floors in this baseline file; any cell below its floor is an error")
	emit := fs.String("emit-baseline", "", "write the campaign's detection-rate floors to this file (the -gate format)")
	fs.Parse(args)

	network, err := loadModel(*model)
	if err != nil {
		return err
	}
	if *grid != "" {
		return runAttackCampaign(network, attackCampaignFlags{
			kinds: *kind, grid: *grid, modes: *modes,
			trials: *trials, workers: *workers, seed: *seed,
			decimals: *decimals, tol: *tol,
			dsKind: *dsKind, size: *size, pool: *pool, suiteN: *suiteN,
			suitePath: *suitePath, key: *key,
			jsonOut: *jsonOut, gatePath: *gatePath, emit: *emit,
		})
	}
	rng := rand.New(rand.NewSource(*seed))
	var p *attack.Perturbation
	switch *kind {
	case "sba":
		p, err = attack.SBA(network, *magnitude, rng)
	case "gda":
		var ds *data.Dataset
		ds, err = dataset(*dsKind, 10, *size, *size, *seed+100)
		if err != nil {
			return err
		}
		v := ds.Samples[0]
		var success bool
		p, success, err = attack.GDA(network, v.X, v.Label, attack.DefaultGDAConfig(), rng)
		if err == nil {
			log.Printf("GDA misclassification achieved: %v", success)
		}
	case "random":
		p, err = attack.RandomNoise(network, *count, *sigma, rng)
	case "bitflip":
		p, err = attack.BitFlip(network, *count, rng)
	case "tbitflip":
		if *bit < 0 {
			return fmt.Errorf("-bit %d out of range [0,31]", *bit)
		}
		p, err = attack.TargetedBitFlip(network, *count, uint(*bit), rng)
	case "trojan":
		var ds *data.Dataset
		ds, err = dataset(*dsKind, 12, *size, *size, *seed+100)
		if err != nil {
			return err
		}
		cleans := make([]*tensor.Tensor, 0, len(ds.Samples)-1)
		for _, s := range ds.Samples[1:] {
			cleans = append(cleans, s.X)
		}
		trigger := ds.Samples[0].X
		target := (network.Predict(trigger) + 1) % ds.Classes
		var success bool
		p, success, err = attack.Trojan(network, trigger, target, cleans, attack.TrojanConfig{Margin: 0.5 * *magnitude})
		if err == nil {
			log.Printf("trojan implanted (trigger steered to class %d): %v", target, success)
		}
	case "subround":
		var ds *data.Dataset
		ds, err = dataset(*dsKind, 8, *size, *size, *seed+200)
		if err != nil {
			return err
		}
		probes := make([]*tensor.Tensor, 0, len(ds.Samples))
		for _, s := range ds.Samples {
			probes = append(probes, s.X)
		}
		p, err = attack.QuantEvade(network, attack.QuantEvadeConfig{
			Decimals: *decimals, Tol: *tol, Headroom: *magnitude, Probes: probes,
		}, rng)
	default:
		return fmt.Errorf("unknown attack %q", *kind)
	}
	if err != nil {
		return err
	}
	log.Printf("applied %s", p)
	dst := *out
	if dst == "" {
		dst = *model
	}
	return saveModel(dst, network)
}

// attackCampaignFlags carries cmdAttack's campaign-mode flag values.
type attackCampaignFlags struct {
	kinds, grid, modes      string
	trials, workers         int
	seed                    int64
	decimals                int
	tol                     float64
	dsKind                  string
	size, pool, suiteN      int
	suitePath, key          string
	jsonOut, gatePath, emit string
}

// runAttackCampaign sweeps detection rate vs attack magnitude per suite
// mode: the tentpole `dnnval attack -kind <k> -magnitude-grid ...`
// driver. The model file is read, never written.
func runAttackCampaign(network *nn.Network, f attackCampaignFlags) error {
	cfg := experiments.CampaignConfig{
		Trials: f.trials, Seed: f.seed, Workers: f.workers,
		Decimals: f.decimals, Tol: f.tol,
	}
	if f.kinds == "all" {
		cfg.Kinds = experiments.CampaignKinds
	} else {
		cfg.Kinds = strings.Split(f.kinds, ",")
	}
	for _, m := range strings.Split(f.modes, ",") {
		cm, err := parseCompareMode(strings.TrimSpace(m))
		if err != nil {
			return err
		}
		cfg.Modes = append(cfg.Modes, cm)
	}
	for _, s := range strings.Split(f.grid, ",") {
		mag, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad -magnitude-grid entry %q: %w", s, err)
		}
		cfg.Magnitudes = append(cfg.Magnitudes, mag)
	}

	victims, err := dataset(f.dsKind, f.pool, f.size, f.size, f.seed+100)
	if err != nil {
		return err
	}
	var suite *validate.Suite
	if f.suitePath != "" {
		if f.key == "" {
			return fmt.Errorf("a -key is required to open the suite")
		}
		sf, err := os.Open(f.suitePath)
		if err != nil {
			return err
		}
		defer sf.Close()
		if suite, err = validate.OpenSuite(sf, []byte(f.key)); err != nil {
			return err
		}
	} else {
		// No sealed suite given: build one on the model in-process. The
		// campaign overrides its mode and decimals per cell anyway.
		probes, err := dataset(f.dsKind, f.suiteN, f.size, f.size, f.seed+200)
		if err != nil {
			return err
		}
		tests := make([]*tensor.Tensor, 0, len(probes.Samples))
		for _, s := range probes.Samples {
			tests = append(tests, s.X)
		}
		suite = validate.BuildSuite("campaign", network, tests, validate.ExactOutputs)
	}

	res, err := experiments.RunCampaign(network, suite, victims, cfg)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	if f.jsonOut != "" {
		raw, err := res.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(f.jsonOut, append(raw, '\n'), 0o644); err != nil {
			return err
		}
	}
	if f.emit != "" {
		if err := os.WriteFile(f.emit, []byte(res.BaselineLines()), 0o644); err != nil {
			return err
		}
	}
	if f.gatePath != "" {
		baseline, err := os.ReadFile(f.gatePath)
		if err != nil {
			return err
		}
		if err := res.CheckFloors(string(baseline)); err != nil {
			return err
		}
		log.Printf("detection gate passed: every %s floor held", f.gatePath)
	}
	return nil
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	model := fs.String("model", "", "model file to validate (local mode)")
	addr := fs.String("addr", "", "served IP address(es), comma-separated for a sharded replica fleet (remote mode)")
	suitePath := fs.String("suite", "suite.bin", "sealed suite file")
	key := fs.String("key", "", "suite sealing key")
	batch := fs.Int("batch", 0, "queries per batched exchange (<=1 single queries; report is identical at any value)")
	workers := fs.Int("workers", 1, "concurrent replay workers (pipelined per connection, spread across replicas)")
	timeout := fs.Duration("timeout", 0, "per-response wait bound in remote mode (0 = default)")
	f32 := fs.Bool("f32", false, "replay on the float32 inference path (protocol v3 float32 frames in remote mode); requires -tol")
	wire := fs.String("wire", "", "remote wire dialect: gob (protocol v2 float64 frames, the default), f32 (v3 float32 frames, same as -f32), quant (v5 quantised delta-encoded frames probing the server's shared frame store, downgrading to per-connection v4 against older servers; a quantized-mode suite replays with verdicts identical to local validation)")
	tol := fs.Float64("tol", 0, "accept outputs within this absolute tolerance of the recorded references (0 = bit-exact, the paper's setting)")
	cacheFrames := fs.Int("cache-frames", 0, "quant-wire replay-frame cache bound in frames on a v5 session (0 = the compiled default, 256)")
	cacheBytes := fs.Int("cache-bytes", 0, "quant-wire replay-frame cache bound in bytes on a v5 session (0 = the compiled default, 8 MiB)")
	fs.Parse(args)

	dialect, err := validate.ParseWire(*wire)
	if err != nil {
		return fmt.Errorf("unknown -wire %q (want gob, f32 or quant)", *wire)
	}
	switch dialect {
	case validate.WireGob:
		if *f32 {
			return fmt.Errorf("-wire gob requests the v2 float64 dialect, which -f32 contradicts: drop one of the two flags")
		}
	case validate.WireF32:
		*f32 = true
	}
	quantWire := dialect == validate.WireQuant
	if quantWire && *addr == "" {
		return fmt.Errorf("-wire quant selects the v4 network dialect and needs -addr; local replay of a quantized suite already compares quantised")
	}
	if *key == "" {
		return fmt.Errorf("a -key is required to open the suite")
	}
	f, err := os.Open(*suitePath)
	if err != nil {
		return err
	}
	defer f.Close()
	suite, err := validate.OpenSuite(f, []byte(*key))
	if err != nil {
		return err
	}
	// Quantised and labels-only suites already tolerate sub-rounding
	// deviation, so -f32 without -tol is only a guaranteed failure for
	// the bit-exact comparison mode.
	if *f32 && *tol <= 0 && suite.Mode == validate.ExactOutputs {
		return fmt.Errorf("-f32 computes in float32, which cannot match float64 references bit-exactly: pass -tol (1e-4 is a sound default for these models)")
	}
	if quantWire && suite.Mode != validate.QuantizedOutputs {
		return fmt.Errorf("-wire quant compares fixed-point wire frames, which needs a quantized-mode suite (generate -mode quantized); this suite is %s", suite.Mode)
	}

	var ip validate.IP
	switch {
	case *addr != "":
		addrs := strings.Split(*addr, ",")
		opts := validate.DialOptions{
			ReadTimeout: *timeout, Wire: dialect, F32: *f32, Decimals: suite.Decimals,
			CacheFrames: *cacheFrames, CacheBytes: *cacheBytes,
		}
		if len(addrs) > 1 {
			cluster, err := validate.DialShards(addrs, opts)
			if err != nil {
				return err
			}
			defer cluster.Close()
			ip = cluster
		} else {
			remote, err := validate.DialWith(addrs[0], opts)
			if err != nil {
				return err
			}
			defer remote.Close()
			ip = remote
		}
	case *model != "":
		network, err := loadModel(*model)
		if err != nil {
			return err
		}
		// Concurrent local replay needs per-worker clones; the serial
		// float64 case keeps the allocation-free direct path.
		switch {
		case *f32:
			ip = validate.NewPooledF32IP(network, *workers)
		case *workers > 1:
			ip = validate.NewPooledIP(network, *workers)
		default:
			ip = validate.LocalIP{Net: network}
		}
	default:
		return fmt.Errorf("need -model or -addr")
	}

	rep, err := suite.ValidateWith(ip, validate.ValidateOptions{Batch: *batch, Concurrency: *workers, Tolerance: *tol})
	if err != nil {
		return err
	}
	fmt.Println(rep)
	if !rep.Passed {
		os.Exit(1)
	}
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	model := fs.String("model", "model.gob", "model file")
	addr := fs.String("addr", "127.0.0.1:7077", "listen address of the first replica")
	replicas := fs.Int("replicas", 1, "replica endpoints to serve, on consecutive ports from -addr")
	workers := fs.Int("workers", 0, "network clones (= concurrent queries) per replica; 0 = whole machine")
	f32 := fs.Bool("f32", false, "additionally host a float32 inference fleet per replica: protocol-v3 clients (dnnval validate -f32) are served reduced-precision, v2 clients stay bit-exact float64")
	maxWire := fs.Int("max-wire", 0, "highest wire protocol version to negotiate, 0 = the build's highest (v5, so -wire quant clients probe the shared frame store); pin to 2-4 to serve exactly as an older build would (interop/rollback)")
	cacheFrames := fs.Int("cache-frames", 0, "per-session replay-frame cache bound in frames for v5 sessions (0 = the compiled default, 256)")
	cacheBytes := fs.Int("cache-bytes", 0, "per-session replay-frame cache bound in bytes for v5 sessions (0 = the compiled default, 8 MiB)")
	storeFrames := fs.Int("store-frames", 0, "shared content-addressed frame store bound in frames, one store across all replicas (0 = the default, 1024)")
	storeBytes := fs.Int("store-bytes", 0, "shared content-addressed frame store bound in bytes (0 = the default, 32 MiB)")
	coalesce := fs.Duration("coalesce", 0, "gather same-shape single queries from different connections for up to this window into one batched forward pass (0 = off; verdicts are identical either way)")
	coalesceBatch := fs.Int("coalesce-batch", 0, "queries per coalesced batch before it flushes early (0 = the default, 32)")
	fs.Parse(args)

	if *replicas < 1 {
		return fmt.Errorf("need at least one replica, got %d", *replicas)
	}
	if *maxWire != 0 && (*maxWire < 2 || *maxWire > 5) {
		return fmt.Errorf("-max-wire %d out of range: this build speaks v2-v5 (0 = highest)", *maxWire)
	}
	network, err := loadModel(*model)
	if err != nil {
		return err
	}
	host, portStr, err := net.SplitHostPort(*addr)
	if err != nil {
		return fmt.Errorf("bad -addr: %w", err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return fmt.Errorf("bad -addr port: %w", err)
	}
	if port == 0 && *replicas > 1 {
		return fmt.Errorf("-replicas needs a fixed base port, not :0")
	}

	// One content-addressed frame store across the whole fleet process:
	// a sealed suite's frames are stored once no matter how many
	// replicas and re-dials touch them.
	store := validate.NewFrameStore(*storeFrames, *storeBytes)
	servers := make([]*validate.Server, 0, *replicas)
	for i := 0; i < *replicas; i++ {
		l, err := net.Listen("tcp", net.JoinHostPort(host, strconv.Itoa(port+i)))
		if err != nil {
			for _, s := range servers {
				s.Close()
			}
			return fmt.Errorf("replica %d: %w", i, err)
		}
		srvWire := validate.WireAuto
		if *f32 {
			srvWire = validate.WireF32
		}
		srv := validate.ServeWith(l, network, validate.ServerOptions{
			Workers: *workers, Wire: srvWire, MaxVersion: byte(*maxWire),
			CacheFrames: *cacheFrames, CacheBytes: *cacheBytes,
			FrameStore:     store,
			CoalesceWindow: *coalesce, CoalesceBatch: *coalesceBatch,
		})
		servers = append(servers, srv)
		log.Printf("serving IP replica %d/%d on %s", i+1, *replicas, srv.Addr())
	}
	log.Printf("validate against the fleet with: dnnval validate -addr %s", fleetAddrs(servers))

	// Block until interrupted, then drain every replica gracefully:
	// in-flight requests are answered before the endpoints go away.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down %d replica(s)", len(servers))
	for _, s := range servers {
		s.Close()
	}
	return nil
}

// cmdSentinel runs the continuous fleet-validation daemon of the
// sentinel package against a served fleet: scheduled trickle replays
// under a query budget, per-replica attribution on divergence,
// quarantine/readmission, and HTTP observability.
func cmdSentinel(args []string) error {
	fs := flag.NewFlagSet("sentinel", flag.ExitOnError)
	addr := fs.String("addr", "", "served IP address(es) of the fleet, comma-separated (as printed by dnnval serve)")
	suitePath := fs.String("suite", "suite.bin", "sealed suite file")
	key := fs.String("key", "", "suite sealing key")
	interval := fs.Duration("interval", 30*time.Second, "time between validation rounds")
	sample := fs.Int("sample", 16, "suite tests replayed per round, drawn from a seeded per-round permutation")
	qps := fs.Float64("qps", 0, "cap on sentinel queries per second — the standing query budget (0 = unpaced)")
	batch := fs.Int("batch", 4, "queries per batched exchange")
	tol := fs.Float64("tol", 0, "accept outputs within this absolute tolerance (required with -f32 on an exact-mode suite)")
	wire := fs.String("wire", "", "wire dialect: gob (v2, default), f32 (v3), quant (v4; needs a quantized-mode suite)")
	f32 := fs.Bool("f32", false, "replay on the float32 inference path; requires -tol on an exact-mode suite")
	seed := fs.Int64("seed", 1, "sampling seed; any round is reproducible from (-seed, round number) alone")
	httpAddr := fs.String("http", "127.0.0.1:0", "observability listen address serving /metrics and /status (\"\" disables)")
	alertURL := fs.String("alert-url", "", "webhook URL POSTed each alert as JSON with capped retry (\"\" disables); outcomes surface in /metrics")
	rounds := fs.Uint64("rounds", 0, "stop after this many rounds (0 = run until interrupted)")
	reprobe := fs.Duration("reprobe", time.Second, "minimum backoff before a down or quarantined replica is re-probed (doubles per failure, capped at 30s or this value if larger)")
	timeout := fs.Duration("timeout", 0, "per-response wait bound (0 = default)")
	fs.Parse(args)

	if *addr == "" {
		return fmt.Errorf("sentinel watches a served fleet: -addr is required")
	}
	if *key == "" {
		return fmt.Errorf("a -key is required to open the suite")
	}
	dialect, err := validate.ParseWire(*wire)
	if err != nil {
		return fmt.Errorf("unknown -wire %q (want gob, f32 or quant)", *wire)
	}
	switch dialect {
	case validate.WireGob:
		if *f32 {
			return fmt.Errorf("-wire gob requests the v2 float64 dialect, which -f32 contradicts: drop one of the two flags")
		}
	case validate.WireF32:
		*f32 = true
	}
	f, err := os.Open(*suitePath)
	if err != nil {
		return err
	}
	defer f.Close()
	suite, err := validate.OpenSuite(f, []byte(*key))
	if err != nil {
		return err
	}
	if *f32 && *tol <= 0 && suite.Mode == validate.ExactOutputs {
		return fmt.Errorf("-f32 computes in float32, which cannot match float64 references bit-exactly: pass -tol (1e-4 is a sound default for these models)")
	}
	if dialect == validate.WireQuant && suite.Mode != validate.QuantizedOutputs {
		return fmt.Errorf("-wire quant compares fixed-point wire frames, which needs a quantized-mode suite (generate -mode quantized); this suite is %s", suite.Mode)
	}

	addrs := strings.Split(*addr, ",")
	fleet, err := validate.DialShards(addrs, validate.DialOptions{ReadTimeout: *timeout, Wire: dialect, F32: *f32, Decimals: suite.Decimals})
	if err != nil {
		return err
	}
	defer fleet.Close()
	maxBackoff := 30 * time.Second
	if *reprobe > maxBackoff {
		maxBackoff = *reprobe
	}
	fleet.SetProbeBackoff(*reprobe, maxBackoff)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	sen, err := sentinel.New(sentinel.Config{
		Suite:     suite,
		Fleet:     fleet,
		Interval:  *interval,
		Sample:    *sample,
		QPS:       *qps,
		Batch:     *batch,
		Tolerance: *tol,
		Wire:      dialect,
		Seed:      *seed,
		AlertURL:  *alertURL,
		OnAlert: func(a sentinel.Alert) {
			// One machine-parseable line per incident: the alert record
			// is the sentinel's product, so it ships whole.
			if b, jerr := json.Marshal(a); jerr == nil {
				log.Printf("ALERT %s", b)
			}
		},
		OnRound: func(r sentinel.RoundResult) {
			if *rounds > 0 && r.Round >= *rounds {
				cancel()
			}
		},
		Logf: log.Printf,
	})
	if err != nil {
		return err
	}

	var hsrv *http.Server
	if *httpAddr != "" {
		l, lerr := net.Listen("tcp", *httpAddr)
		if lerr != nil {
			return fmt.Errorf("observability listener: %w", lerr)
		}
		hsrv = &http.Server{Handler: sen.Handler()}
		go hsrv.Serve(l)
		defer hsrv.Close()
		log.Printf("sentinel observability on http://%s (/metrics, /status)", l.Addr())
	}

	log.Printf("sentinel watching %d replica(s) at %s: every %v, sample %d, seed %d", len(addrs), *addr, *interval, *sample, *seed)
	err = sen.Run(ctx)
	if errors.Is(err, context.Canceled) {
		st := sen.Status()
		log.Printf("sentinel stopped after %d round(s): %d pass, %d fail, %d error, %d alert(s), %d readmission(s)",
			st.Rounds, st.Passes, st.Fails, st.Errors, st.AlertsTotal, st.Readmissions)
		return nil
	}
	return err
}

// fleetAddrs renders the serve fleet as a -addr value.
func fleetAddrs(servers []*validate.Server) string {
	addrs := make([]string, len(servers))
	for i, s := range servers {
		addrs[i] = s.Addr()
	}
	return strings.Join(addrs, ",")
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	model := fs.String("model", "model.gob", "model file")
	fs.Parse(args)

	network, err := loadModel(*model)
	if err != nil {
		return err
	}
	fmt.Printf("layers: %d, parameters: %d\n", len(network.LayerStack), network.NumParams())
	for _, p := range network.Params() {
		fmt.Printf("  %-12s %7d values\n", p.Name, p.W.Size())
	}
	return nil
}
