package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// lineBuffer collects a process's stderr lines for pattern waiting.
type lineBuffer struct {
	mu    sync.Mutex
	lines []string
}

func (b *lineBuffer) follow(r io.Reader) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		b.mu.Lock()
		b.lines = append(b.lines, sc.Text())
		b.mu.Unlock()
	}
}

// len returns the number of lines collected so far, for use as a
// waitLine offset ("only lines after this point count").
func (b *lineBuffer) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.lines)
}

// waitLine polls for the first line at or after index from that
// contains every pattern.
func (b *lineBuffer) waitLine(t *testing.T, from int, timeout time.Duration, patterns ...string) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		b.mu.Lock()
		lines := b.lines
		b.mu.Unlock()
	scan:
		for _, l := range lines[min(from, len(lines)):] {
			for _, p := range patterns {
				if !strings.Contains(l, p) {
					continue scan
				}
			}
			return l
		}
		if time.Now().After(deadline) {
			t.Fatalf("no line with %q within %v; got:\n%s", patterns, timeout, strings.Join(lines, "\n"))
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// startServe launches `dnnval serve` and waits for its replicas to come
// up, reporting false on a lost port race so the caller can retry.
func startServe(t *testing.T, bin, model string, port, replicas int) (*exec.Cmd, bool) {
	t.Helper()
	cmd := exec.Command(bin, "serve", "-model", model,
		"-addr", fmt.Sprintf("127.0.0.1:%d", port), "-replicas", fmt.Sprint(replicas), "-workers", "2")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	up := make(chan bool, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if strings.Contains(sc.Text(), fmt.Sprintf("replica %d/%d", replicas, replicas)) {
				up <- true
				return
			}
			if strings.Contains(sc.Text(), "address already in use") {
				up <- false
				return
			}
		}
		up <- false
	}()
	select {
	case ok := <-up:
		if !ok {
			cmd.Process.Kill()
			cmd.Wait()
		}
		return cmd, ok
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("serve did not come up")
		return nil, false
	}
}

// TestCLISentinel drives the sentinel daemon end to end against a
// mixed fleet: two clean replicas and one serving an attacked model.
// The sentinel must raise an alert naming the poisoned replica,
// quarantine it while the survivors keep passing, expose the whole
// state over /metrics and /status, readmit the replica once it is
// redeployed with the clean model, and exit cleanly on SIGTERM.
func TestCLISentinel(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI workflow is slow")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	model := filepath.Join(dir, "model.gob")
	attacked := filepath.Join(dir, "attacked.gob")
	suite := filepath.Join(dir, "suite.bin")

	if out, err := run(t, bin, "train", "-arch", "cifar", "-size", "16", "-scale", "0.05",
		"-n", "120", "-epochs", "2", "-o", model); err != nil {
		t.Fatalf("train: %v\n%s", err, out)
	}
	if out, err := run(t, bin, "generate", "-model", model, "-data", "objects", "-size", "16",
		"-n", "8", "-pool", "60", "-key", "k1", "-o", suite); err != nil {
		t.Fatalf("generate: %v\n%s", err, out)
	}
	if out, err := run(t, bin, "attack", "-model", model, "-kind", "sba", "-magnitude", "5", "-o", attacked); err != nil {
		t.Fatalf("attack: %v\n%s", err, out)
	}

	// A clean 2-replica serve plus a 1-replica serve of the attacked
	// model; retried together on lost port races (see TestCLIServeValidate).
	var clean, bad *exec.Cmd
	var base int
	started := false
	for attempt := 0; attempt < 5 && !started; attempt++ {
		base = freePorts(t, 3)
		var ok bool
		if clean, ok = startServe(t, bin, model, base, 2); !ok {
			continue
		}
		if bad, ok = startServe(t, bin, attacked, base+2, 1); !ok {
			clean.Process.Kill()
			clean.Wait()
			continue
		}
		started = true
	}
	if !started {
		t.Fatal("fleet lost the port race on every attempt")
	}
	defer clean.Process.Kill()
	defer func() { bad.Process.Kill() }()
	badAddr := fmt.Sprintf("127.0.0.1:%d", base+2)
	addrs := fmt.Sprintf("127.0.0.1:%d,127.0.0.1:%d,%s", base, base+1, badAddr)

	sen := exec.Command(bin, "sentinel", "-addr", addrs, "-suite", suite, "-key", "k1",
		"-interval", "100ms", "-sample", "6", "-batch", "3", "-seed", "5",
		"-reprobe", "100ms", "-http", "127.0.0.1:0")
	senErr, err := sen.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	var buf lineBuffer
	if err := sen.Start(); err != nil {
		t.Fatal(err)
	}
	defer sen.Process.Kill()
	go buf.follow(senErr)

	// The observability endpoint self-reports its picked port.
	obsLine := buf.waitLine(t, 0, 15*time.Second, "sentinel observability on http://")
	obsURL := strings.TrimSpace(strings.SplitN(obsLine, "on ", 2)[1])
	obsURL = strings.Fields(obsURL)[0]

	// The poisoned replica is named, alerted on and quarantined. The
	// ALERT line carries the whole structured record.
	alert := buf.waitLine(t, 0, 30*time.Second, "ALERT ", badAddr)
	if !strings.Contains(alert, `"fleet_wide":false`) {
		t.Fatalf("alert not attributed to one replica: %s", alert)
	}
	if !strings.Contains(alert, fmt.Sprintf(`"quarantined":["%s"]`, badAddr)) {
		t.Fatalf("alert did not quarantine %s: %s", badAddr, alert)
	}

	scrape := func(path string) string {
		t.Helper()
		resp, err := http.Get(obsURL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	metrics := scrape("/metrics")
	for _, want := range []string{
		"dnnval_sentinel_quarantined 1",
		fmt.Sprintf("dnnval_replica_quarantined{replica=\"%s\"} 1", badAddr),
		"dnnval_sentinel_alerts_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	if status := scrape("/status"); !strings.Contains(status, `"state": "quarantined"`) ||
		!strings.Contains(status, badAddr) {
		t.Fatalf("/status does not show the quarantine:\n%s", status)
	}

	// Survivors keep validating clean while the quarantine holds —
	// only rounds after the alert count.
	buf.waitLine(t, buf.len(), 15*time.Second, ": pass (6 tests)")

	// Redeploy the replica with the clean model on the same port; the
	// sentinel's re-validation probe re-dials it and readmits.
	bad.Process.Kill()
	bad.Wait()
	redeployed := false
	for attempt := 0; attempt < 20 && !redeployed; attempt++ {
		if bad, redeployed = startServe(t, bin, model, base+2, 1); !redeployed {
			time.Sleep(100 * time.Millisecond)
		}
	}
	if !redeployed {
		t.Fatal("could not rebind the repaired replica's port")
	}
	buf.waitLine(t, 0, 30*time.Second, badAddr, "readmitted after passing revalidation")

	metrics = scrape("/metrics")
	for _, want := range []string{
		"dnnval_sentinel_readmissions_total 1",
		"dnnval_sentinel_quarantined 0",
		fmt.Sprintf("dnnval_replica_up{replica=\"%s\"} 1", badAddr),
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics after readmission missing %q:\n%s", want, metrics)
		}
	}

	// SIGTERM stops the daemon cleanly with a summary.
	if err := sen.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- sen.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("sentinel exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("sentinel did not exit after SIGTERM")
	}
	buf.waitLine(t, 0, 5*time.Second, "sentinel stopped after")
}
