package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildCLI compiles dnnval once into a temp dir shared by the tests.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dnnval")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build dnnval: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI workflow is slow")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	model := filepath.Join(dir, "model.gob")
	suite := filepath.Join(dir, "suite.bin")

	// train (tiny configuration to keep the test quick)
	out, err := run(t, bin, "train", "-arch", "cifar", "-size", "16", "-scale", "0.05",
		"-n", "120", "-epochs", "2", "-o", model)
	if err != nil {
		t.Fatalf("train: %v\n%s", err, out)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("model not written: %v", err)
	}

	// info
	out, err = run(t, bin, "info", "-model", model)
	if err != nil {
		t.Fatalf("info: %v\n%s", err, out)
	}
	if !strings.Contains(out, "parameters:") || !strings.Contains(out, "conv1.W") {
		t.Fatalf("info output:\n%s", out)
	}

	// generate (sealed)
	out, err = run(t, bin, "generate", "-model", model, "-data", "objects", "-size", "16",
		"-n", "6", "-pool", "60", "-key", "k1", "-o", suite)
	if err != nil {
		t.Fatalf("generate: %v\n%s", err, out)
	}
	if !strings.Contains(out, "validation coverage") {
		t.Fatalf("generate output:\n%s", out)
	}

	// validate the pristine model — must pass (exit 0)
	out, err = run(t, bin, "validate", "-model", model, "-suite", suite, "-key", "k1")
	if err != nil {
		t.Fatalf("validate pristine: %v\n%s", err, out)
	}
	if !strings.Contains(out, "PASS") {
		t.Fatalf("validate output:\n%s", out)
	}

	// wrong key must fail
	if _, err = run(t, bin, "validate", "-model", model, "-suite", suite, "-key", "k2"); err == nil {
		t.Fatal("wrong key accepted")
	}

	// attack the stored model, then validation must fail (exit 1)
	attacked := filepath.Join(dir, "attacked.gob")
	out, err = run(t, bin, "attack", "-model", model, "-kind", "sba", "-magnitude", "5", "-o", attacked)
	if err != nil {
		t.Fatalf("attack: %v\n%s", err, out)
	}
	out, err = run(t, bin, "validate", "-model", attacked, "-suite", suite, "-key", "k1")
	if err == nil {
		t.Fatalf("attacked model passed validation:\n%s", out)
	}
	if !strings.Contains(out, "FAIL") {
		t.Fatalf("validate output after attack:\n%s", out)
	}
}

// freePorts reserves n consecutive-enough free TCP ports by probing a
// random base until n consecutive ports bind.
func freePorts(t *testing.T, n int) int {
	t.Helper()
	for attempt := 0; attempt < 50; attempt++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			continue
		}
		base := l.Addr().(*net.TCPAddr).Port
		l.Close()
		ok := true
		for i := 0; i < n; i++ {
			li, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", base+i))
			if err != nil {
				ok = false
				break
			}
			li.Close()
		}
		if ok {
			return base
		}
	}
	t.Fatal("could not find consecutive free ports")
	return 0
}

// TestCLIServeValidate drives the serving stack end to end: train a
// tiny model, generate a sealed suite, serve the model as a 2-replica
// fleet, validate remotely with batched sharded replay, and shut the
// fleet down gracefully with SIGTERM.
func TestCLIServeValidate(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI workflow is slow")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	model := filepath.Join(dir, "model.gob")
	suite := filepath.Join(dir, "suite.bin")

	if out, err := run(t, bin, "train", "-arch", "cifar", "-size", "16", "-scale", "0.05",
		"-n", "120", "-epochs", "2", "-o", model); err != nil {
		t.Fatalf("train: %v\n%s", err, out)
	}
	if out, err := run(t, bin, "generate", "-model", model, "-data", "objects", "-size", "16",
		"-n", "6", "-pool", "60", "-key", "k1", "-o", suite); err != nil {
		t.Fatalf("generate: %v\n%s", err, out)
	}

	// Port reservation is probe-then-close, so another process can grab
	// a port between the probe and serve's bind (TOCTOU); retry the
	// whole serve startup on fresh ports when that happens.
	var serve *exec.Cmd
	var base int
	started := false
	for attempt := 0; attempt < 5 && !started; attempt++ {
		base = freePorts(t, 2)
		serve = exec.Command(bin, "serve", "-model", model, "-f32",
			"-addr", fmt.Sprintf("127.0.0.1:%d", base), "-replicas", "2", "-workers", "2")
		stderr, err := serve.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := serve.Start(); err != nil {
			t.Fatal(err)
		}
		// Wait for both replicas to come up (the server logs each); a
		// lost port race shows up as early exit with a bind error.
		up := make(chan bool, 1)
		go func() {
			sc := bufio.NewScanner(stderr)
			for sc.Scan() {
				if strings.Contains(sc.Text(), "replica 2/2") {
					up <- true
					return
				}
				if strings.Contains(sc.Text(), "address already in use") {
					up <- false
					return
				}
			}
			up <- false
		}()
		select {
		case ok := <-up:
			if ok {
				started = true
			} else {
				serve.Process.Kill()
				serve.Wait()
			}
		case <-time.After(30 * time.Second):
			t.Fatal("serve fleet did not come up")
		}
	}
	if !started {
		t.Fatal("serve fleet lost the port race on every attempt")
	}
	defer serve.Process.Kill()

	addrs := fmt.Sprintf("127.0.0.1:%d,127.0.0.1:%d", base, base+1)
	out, err := run(t, bin, "validate", "-addr", addrs, "-suite", suite, "-key", "k1",
		"-batch", "4", "-workers", "2")
	if err != nil {
		t.Fatalf("remote sharded validate: %v\n%s", err, out)
	}
	if !strings.Contains(out, "PASS") {
		t.Fatalf("remote validate output:\n%s", out)
	}

	// The same fleet serves the float32 path to -f32 clients: protocol
	// v3 float32 frames, accepted under an explicit tolerance.
	out, err = run(t, bin, "validate", "-addr", addrs, "-suite", suite, "-key", "k1",
		"-f32", "-tol", "1e-4", "-batch", "4", "-workers", "2")
	if err != nil {
		t.Fatalf("remote f32 validate: %v\n%s", err, out)
	}
	if !strings.Contains(out, "PASS") {
		t.Fatalf("remote f32 validate output:\n%s", out)
	}

	// -f32 without -tol is a user error with a helpful message, not a
	// silently failing replay.
	out, err = run(t, bin, "validate", "-addr", addrs, "-suite", suite, "-key", "k1", "-f32")
	if err == nil || !strings.Contains(out, "-tol") {
		t.Fatalf("f32 without tol: err=%v out:\n%s", err, out)
	}

	// A quantized-mode suite replays over the v4 quantised wire with
	// verdicts identical to local QuantizedOutputs validation.
	qsuite := filepath.Join(dir, "qsuite.bin")
	if out, err := run(t, bin, "generate", "-model", model, "-data", "objects", "-size", "16",
		"-n", "6", "-pool", "60", "-mode", "quantized", "-decimals", "5", "-key", "k1", "-o", qsuite); err != nil {
		t.Fatalf("generate quantized: %v\n%s", err, out)
	}
	out, err = run(t, bin, "validate", "-addr", addrs, "-suite", qsuite, "-key", "k1",
		"-wire", "quant", "-batch", "4", "-workers", "2")
	if err != nil {
		t.Fatalf("remote quant-wire validate: %v\n%s", err, out)
	}
	if !strings.Contains(out, "PASS") {
		t.Fatalf("remote quant-wire validate output:\n%s", out)
	}

	// The quantised dialect also rides the float32 fleet this serve
	// hosts (-wire quant -f32: v4 frames, float32 evaluation). Whether
	// float32 rounding survives the suite's quantisation depends on the
	// model, so the guaranteed property is verdict identity with the
	// local float32 quantised replay, not PASS.
	localOut, localErr := run(t, bin, "validate", "-model", model, "-suite", qsuite, "-key", "k1",
		"-f32", "-batch", "4")
	remoteOut, remoteErr := run(t, bin, "validate", "-addr", addrs, "-suite", qsuite, "-key", "k1",
		"-wire", "quant", "-f32", "-batch", "4")
	if (localErr == nil) != (remoteErr == nil) ||
		strings.Contains(localOut, "PASS") != strings.Contains(remoteOut, "PASS") {
		t.Fatalf("quant-wire f32 verdict differs from local f32 replay:\nlocal (%v):\n%s\nremote (%v):\n%s",
			localErr, localOut, remoteErr, remoteOut)
	}

	// -wire quant needs a quantized-mode suite — an exact suite is a
	// user error with a helpful message.
	out, err = run(t, bin, "validate", "-addr", addrs, "-suite", suite, "-key", "k1", "-wire", "quant")
	if err == nil || !strings.Contains(out, "quantized") {
		t.Fatalf("quant wire with exact suite: err=%v out:\n%s", err, out)
	}

	// Local float32 replay takes the same flags without a server.
	out, err = run(t, bin, "validate", "-model", model, "-suite", suite, "-key", "k1",
		"-f32", "-tol", "1e-4", "-workers", "2", "-batch", "4")
	if err != nil {
		t.Fatalf("local f32 validate: %v\n%s", err, out)
	}
	if !strings.Contains(out, "PASS") {
		t.Fatalf("local f32 validate output:\n%s", out)
	}

	// Graceful shutdown: SIGTERM must drain and exit cleanly.
	if err := serve.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- serve.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
}

// TestCLIAttackCampaign drives the detection-rate campaign end to end:
// table on stdout, JSON artifact, baseline emission and the regression
// gate, with worker-count independence of the whole pipeline.
func TestCLIAttackCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI workflow is slow")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	model := filepath.Join(dir, "model.gob")
	if out, err := run(t, bin, "train", "-arch", "cifar", "-size", "16", "-scale", "0.05",
		"-n", "120", "-epochs", "2", "-o", model); err != nil {
		t.Fatalf("train: %v\n%s", err, out)
	}

	jsonPath := filepath.Join(dir, "campaign.json")
	basePath := filepath.Join(dir, "baseline.txt")
	campaign := func(workers string, extra ...string) []string {
		args := []string{"attack", "-model", model, "-kind", "sba,subround",
			"-magnitude-grid", "0.5,2", "-mode", "exact,quantized", "-trials", "2",
			"-size", "16", "-pool", "30", "-suite-n", "6", "-workers", workers}
		return append(args, extra...)
	}
	out1, err := run(t, bin, campaign("1", "-json", jsonPath, "-emit-baseline", basePath)...)
	if err != nil {
		t.Fatalf("campaign: %v\n%s", err, out1)
	}
	for _, want := range []string{"sba m=0.5", "subround m=2", "exact", "quantized"} {
		if !strings.Contains(out1, want) {
			t.Fatalf("campaign table missing %q:\n%s", want, out1)
		}
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("campaign JSON not written: %v", err)
	}
	for _, want := range []string{`"kind": "sba"`, `"mode": "quantized"`, `"cells"`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("campaign JSON missing %q:\n%s", want, raw)
		}
	}

	// The sweep is a pure function of (seed, grid): more workers, same
	// table.
	out4, err := run(t, bin, campaign("4")...)
	if err != nil {
		t.Fatalf("campaign workers=4: %v\n%s", err, out4)
	}
	if out1 != out4 {
		t.Fatalf("campaign table differs between 1 and 4 workers:\n%s\nvs\n%s", out1, out4)
	}

	// The gate passes against the campaign's own floors...
	out, err := run(t, bin, campaign("0", "-gate", basePath)...)
	if err != nil {
		t.Fatalf("gate against own floors: %v\n%s", err, out)
	}
	if !strings.Contains(out, "detection gate passed") {
		t.Fatalf("gate output:\n%s", out)
	}
	// ...and fails when a floor is raised above any achievable rate.
	baseline, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	raisedPath := filepath.Join(dir, "raised.txt")
	if err := os.WriteFile(raisedPath, append(baseline, []byte("sba exact 0.5 100.1\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = run(t, bin, campaign("0", "-gate", raisedPath)...)
	if err == nil {
		t.Fatalf("raised floor accepted:\n%s", out)
	}
	if !strings.Contains(out, "below floor") {
		t.Fatalf("gate failure output:\n%s", out)
	}
}

func TestCLIUnknownSubcommand(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI workflow is slow")
	}
	bin := buildCLI(t)
	if _, err := run(t, bin, "bogus"); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if _, err := run(t, bin); err == nil {
		t.Fatal("missing subcommand accepted")
	}
}
