package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles dnnval once into a temp dir shared by the tests.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dnnval")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build dnnval: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI workflow is slow")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	model := filepath.Join(dir, "model.gob")
	suite := filepath.Join(dir, "suite.bin")

	// train (tiny configuration to keep the test quick)
	out, err := run(t, bin, "train", "-arch", "cifar", "-size", "16", "-scale", "0.05",
		"-n", "120", "-epochs", "2", "-o", model)
	if err != nil {
		t.Fatalf("train: %v\n%s", err, out)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("model not written: %v", err)
	}

	// info
	out, err = run(t, bin, "info", "-model", model)
	if err != nil {
		t.Fatalf("info: %v\n%s", err, out)
	}
	if !strings.Contains(out, "parameters:") || !strings.Contains(out, "conv1.W") {
		t.Fatalf("info output:\n%s", out)
	}

	// generate (sealed)
	out, err = run(t, bin, "generate", "-model", model, "-data", "objects", "-size", "16",
		"-n", "6", "-pool", "60", "-key", "k1", "-o", suite)
	if err != nil {
		t.Fatalf("generate: %v\n%s", err, out)
	}
	if !strings.Contains(out, "validation coverage") {
		t.Fatalf("generate output:\n%s", out)
	}

	// validate the pristine model — must pass (exit 0)
	out, err = run(t, bin, "validate", "-model", model, "-suite", suite, "-key", "k1")
	if err != nil {
		t.Fatalf("validate pristine: %v\n%s", err, out)
	}
	if !strings.Contains(out, "PASS") {
		t.Fatalf("validate output:\n%s", out)
	}

	// wrong key must fail
	if _, err = run(t, bin, "validate", "-model", model, "-suite", suite, "-key", "k2"); err == nil {
		t.Fatal("wrong key accepted")
	}

	// attack the stored model, then validation must fail (exit 1)
	attacked := filepath.Join(dir, "attacked.gob")
	out, err = run(t, bin, "attack", "-model", model, "-kind", "sba", "-magnitude", "5", "-o", attacked)
	if err != nil {
		t.Fatalf("attack: %v\n%s", err, out)
	}
	out, err = run(t, bin, "validate", "-model", attacked, "-suite", suite, "-key", "k1")
	if err == nil {
		t.Fatalf("attacked model passed validation:\n%s", out)
	}
	if !strings.Contains(out, "FAIL") {
		t.Fatalf("validate output after attack:\n%s", out)
	}
}

func TestCLIUnknownSubcommand(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI workflow is slow")
	}
	bin := buildCLI(t)
	if _, err := run(t, bin, "bogus"); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if _, err := run(t, bin); err == nil {
		t.Fatal("missing subcommand accepted")
	}
}
